//! Distributed Least-Element lists (Cohen \[Coh97\]; the \[FL16\]
//! substitute — see DESIGN.md §3).
//!
//! Given a permutation π over an active set `A ⊆ V`, the LE list of `v`
//! is
//!
//! ```text
//! LE(v) = { (u, d(u,v)) : u ∈ A, no w ∈ A has d(v,w) ≤ d(v,u) and π(w) < π(u) }
//! ```
//!
//! i.e. `u` enters `v`'s list if it is first in π among all active
//! vertices within distance `d(v,u)` of `v`. Khan et al. \[KKM+12\] show
//! the lists have `O(log n)` entries w.h.p. over π.
//!
//! \[FL16\] compute the lists w.r.t. an auxiliary graph `H` with
//! `d_G ≤ d_H ≤ (1+δ)·d_G`; we reproduce that by an optional per-edge
//! weight stretch (each edge's `H`-weight is `w·(1 + δ·u(e))` for a
//! seed-hashed `u(e) ∈ [0,1]`), and compute the lists by distributed
//! Bellman–Ford-style relaxation of `(π(u), u, d)` triples: a triple
//! survives at `v` only while no known smaller-π vertex is at least as
//! close, and only surviving triples propagate. A distance bound keeps
//! the computation local, which is all §6 needs (the net test only
//! inspects the list up to distance ∆).
//!
//! The wire format and the clause-7 combiner come from the shared
//! keyed-relaxation subsystem ([`congest::relax`]): triples travel as
//! canonical `(key = origin vertex, dist, aux = rank)` messages and
//! merge by the subsystem's componentwise minimum (the rank is a pure
//! function of the vertex, so equal per key — the minimum keeps it).
//! Unlike the Bellman–Ford family, the *table* is not the dense
//! [`congest::relax::KeyedRelaxation`]: the key space is all of `V`,
//! and it is exactly the π-domination filter that keeps LE state and
//! traffic at `O(log n)` per node — a dense per-origin table would be
//! Θ(n) per node and defeat the lists' point. The domination list
//! stays; everything message-shaped is the subsystem's.

use congest::collective;
use congest::relax::{self, RelaxMsg};
use congest::tree::BfsTree;
use congest::{Ctx, Executor, Message, Program, RunStats, Word};
use lightgraph::{NodeId, Weight};
use std::collections::HashMap;

const TAG_LE: u64 = 30;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The computed LE lists.
#[derive(Debug, Clone)]
pub struct LeLists {
    /// `lists[v]` = `(u, d_H(u,v))` entries sorted by increasing
    /// distance (π strictly decreases along the list). Inactive `v`
    /// still have lists (they observe active vertices around them).
    pub lists: Vec<Vec<(NodeId, Weight)>>,
    /// The permutation rank of every vertex (lower = earlier in π).
    pub rank: Vec<u64>,
    /// Rounds/messages of the computation.
    pub stats: RunStats,
}

impl LeLists {
    /// The first vertex in π within distance `r` of `v` (w.r.t. the
    /// auxiliary weights), if any active vertex is that close: the
    /// entry with the largest distance `≤ r`.
    pub fn first_within(&self, v: NodeId, r: Weight) -> Option<NodeId> {
        self.lists[v]
            .iter()
            .take_while(|&&(_, d)| d <= r)
            .last()
            .map(|&(u, _)| u)
    }

    /// Whether `v` itself is the π-minimum of its `r`-ball — the §6 net
    /// joining test.
    pub fn is_local_minimum(&self, v: NodeId, r: Weight) -> bool {
        self.first_within(v, r) == Some(v)
    }
}

/// One entry in the working list: (rank, vertex, distance).
type Entry = (u64, NodeId, Weight);

struct LeProgram {
    active: bool,
    rank: u64,
    bound: Weight,
    /// H-weights of incident edges, by neighbor.
    weights: HashMap<NodeId, Weight>,
    /// Non-dominated entries.
    list: Vec<Entry>,
}

impl LeProgram {
    /// Inserts if not dominated; returns true if the list changed.
    /// `e = (rank, vertex, dist)` is dominated if some entry has both
    /// smaller-or-equal rank and smaller-or-equal distance (with one
    /// strict, or equal vertex).
    fn offer(&mut self, e: Entry) -> bool {
        let (rk, u, d) = e;
        if d > self.bound {
            return false;
        }
        for &(rk2, u2, d2) in &self.list {
            if u2 == u && d2 <= d {
                return false;
            }
            if rk2 < rk && d2 <= d {
                return false;
            }
            debug_assert!(!(rk2 == rk && u2 != u), "permutation ranks collide");
        }
        // Drop entries the newcomer dominates: same vertex at a larger
        // distance, or smaller rank at most as far.
        self.list
            .retain(|&(rk2, u2, d2)| !(u2 == u || (rk < rk2 && d <= d2)));
        self.list.push(e);
        true
    }
}

impl LeProgram {
    /// The canonical wire form of an entry (subsystem codec: key =
    /// origin vertex, aux = permutation rank).
    fn encode(entry: Entry) -> Message {
        let (rk, u, d) = entry;
        RelaxMsg {
            key: u as u64,
            dist: d,
            aux: rk,
        }
        .encode(TAG_LE)
    }
}

impl Program for LeProgram {
    type Output = Vec<Entry>;

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.active {
            let me = (self.rank, ctx.node(), 0);
            self.offer(me);
            ctx.send_all(Self::encode(me));
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_>, inbox: &[(NodeId, Message)]) {
        let mut fresh: Vec<Entry> = Vec::new();
        for (from, msg) in inbox {
            let m = RelaxMsg::decode(TAG_LE, msg);
            let w = *self.weights.get(from).expect("sender is a neighbor");
            let e = (m.aux, m.key as NodeId, m.dist.saturating_add(w));
            if self.offer(e) {
                fresh.push(e);
            }
        }
        for e in fresh {
            ctx.send_all(Self::encode(e));
        }
    }

    /// Per-edge combiner (contract clause 7), straight from the
    /// subsystem: triples for the same origin vertex supersede each
    /// other (the rank is a function of the vertex), so co-queued ones
    /// collapse to the componentwise minimum — minimum distance, same
    /// rank. The LE list is the order-independent non-dominated fixed
    /// point, so delivering only the dominating triple leaves outputs
    /// untouched.
    fn combine_key(&self, msg: &Message) -> Option<Word> {
        Some(relax::combine_key(msg))
    }

    fn combine(&self, queued: &Message, incoming: &Message) -> Message {
        relax::combine_min(queued, incoming)
    }

    fn finish(mut self) -> Self::Output {
        self.list.sort_by_key(|&(_, _, d)| d);
        self.list
    }
}

/// Computes LE lists for the `active` vertices, up to distance `bound`.
///
/// A permutation seed is broadcast from the root of `tau` (`O(D)`), then
/// every vertex derives its rank locally; relaxation proceeds until
/// quiescence. `delta` stretches each edge weight by a hash-random
/// factor in `[1, 1+delta]`, realizing the auxiliary graph `H` of
/// \[FL16\] with `d_G ≤ d_H ≤ (1+δ)·d_G`.
pub fn le_lists(
    sim: &mut impl Executor,
    tau: &BfsTree,
    active: &[bool],
    bound: Weight,
    delta: f64,
    seed: u64,
) -> LeLists {
    let start = sim.total();
    let g = sim.graph();
    let n = g.n();
    assert_eq!(active.len(), n);

    let (seed_recv, _) = collective::broadcast(sim, tau, vec![(0, [seed, 0])]);
    debug_assert!(seed_recv.iter().all(|r| r.len() == 1));

    // Rank = (hash, id) flattened into one word: hash in the high bits,
    // id in the low bits, so ranks never collide.
    let rank: Vec<u64> = (0..n)
        .map(|v| ((splitmix64(seed ^ v as u64) >> 32) << 32) | v as u64)
        .collect();

    let h_weight = |e: lightgraph::EdgeId, w: Weight| -> Weight {
        if delta <= 0.0 {
            w
        } else {
            let u = (splitmix64(seed ^ 0xabcd ^ e as u64) % 1_000_000) as f64 / 1_000_000.0;
            ((w as f64) * (1.0 + delta * u)).ceil() as Weight
        }
    };

    let (lists, _) = sim.run(|v, graph| LeProgram {
        active: active[v],
        rank: rank[v],
        bound,
        weights: graph
            .neighbors(v)
            .iter()
            .map(|&(u, w, e)| (u, h_weight(e, w)))
            .collect(),
        list: Vec::new(),
    });

    let stats = sim.total().since(start);
    LeLists {
        lists: lists
            .into_iter()
            .map(|l| l.into_iter().map(|(_, u, d)| (u, d)).collect())
            .collect(),
        rank,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::tree::build_bfs_tree;
    use congest::Simulator;
    use lightgraph::{dijkstra, generators, INF};

    /// Sequential oracle: brute-force LE lists from all-pairs distances.
    fn oracle_lists(
        g: &lightgraph::Graph,
        active: &[bool],
        rank: &[u64],
        bound: Weight,
    ) -> Vec<Vec<(NodeId, Weight)>> {
        let ap = dijkstra::all_pairs(g);
        (0..g.n())
            .map(|v| {
                let mut entries: Vec<(NodeId, Weight)> = Vec::new();
                for u in 0..g.n() {
                    if !active[u] || ap[v][u] > bound || ap[v][u] >= INF {
                        continue;
                    }
                    let dominated =
                        (0..g.n()).any(|w| active[w] && ap[v][w] <= ap[v][u] && rank[w] < rank[u]);
                    if !dominated {
                        entries.push((u, ap[v][u]));
                    }
                }
                entries.sort_by_key(|&(u, d)| (d, u));
                entries
            })
            .collect()
    }

    #[test]
    fn matches_bruteforce_oracle() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(30, 0.15, 20, seed);
            let active = vec![true; g.n()];
            let mut sim = Simulator::new(&g);
            let (tau, _) = build_bfs_tree(&mut sim, 0);
            let le = le_lists(&mut sim, &tau, &active, INF, 0.0, seed);
            let oracle = oracle_lists(&g, &active, &le.rank, INF);
            assert_eq!(le.lists, oracle, "seed {seed}");
        }
    }

    #[test]
    fn respects_active_set_and_bound() {
        let g = generators::path(12, 5);
        let mut active = vec![false; 12];
        active[0] = true;
        active[6] = true;
        active[11] = true;
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let bound = 20; // 4 hops
        let le = le_lists(&mut sim, &tau, &active, bound, 0.0, 7);
        let oracle = oracle_lists(&g, &active, &le.rank, bound);
        assert_eq!(le.lists, oracle);
        // vertex 3 sees only 0 and 6 (both within 20), vertex 11 sees
        // itself; no inactive vertex ever appears
        for l in &le.lists {
            for &(u, _) in l {
                assert!(active[u]);
            }
        }
    }

    #[test]
    fn list_sizes_are_logarithmic() {
        let g = generators::erdos_renyi(120, 0.05, 50, 9);
        let active = vec![true; g.n()];
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let le = le_lists(&mut sim, &tau, &active, INF, 0.0, 9);
        let max_len = le.lists.iter().map(Vec::len).max().unwrap();
        // O(log n) w.h.p.; allow a generous constant
        assert!(max_len <= 4 * 7, "LE list too long: {max_len}");
    }

    #[test]
    fn first_within_and_local_minimum() {
        let g = generators::erdos_renyi(40, 0.12, 25, 11);
        let active = vec![true; g.n()];
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let le = le_lists(&mut sim, &tau, &active, INF, 0.0, 11);
        let ap = dijkstra::all_pairs(&g);
        let r = 30;
        for v in 0..g.n() {
            let expect = (0..g.n())
                .filter(|&u| ap[v][u] <= r)
                .min_by_key(|&u| le.rank[u]);
            assert_eq!(le.first_within(v, r), expect, "vertex {v}");
            assert_eq!(le.is_local_minimum(v, r), expect == Some(v));
        }
    }

    #[test]
    fn stretched_weights_stay_within_delta() {
        let g = generators::erdos_renyi(30, 0.2, 20, 13);
        let active = vec![true; g.n()];
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let delta = 0.5;
        let le = le_lists(&mut sim, &tau, &active, INF, delta, 13);
        let ap = dijkstra::all_pairs(&g);
        for v in 0..g.n() {
            for &(u, d) in &le.lists[v] {
                assert!(d >= ap[v][u], "H must not shorten distances");
                assert!(
                    (d as f64) <= (ap[v][u] as f64) * (1.0 + delta) + 1.5,
                    "H distance exceeds (1+δ): {} vs {}",
                    d,
                    ap[v][u]
                );
            }
        }
    }
}
