//! Workspace facade for the light-networks reproduction.
//!
//! Re-exports the public API of every crate so that the integration tests
//! and examples at the repository root can use a single dependency. See
//! `lightnet` (in `crates/core`) for the paper's primary contributions.

pub use congest;
pub use dist_mst;
pub use dist_sssp;
pub use lightgraph;
pub use lightnet;
pub use sparse_spanner;
