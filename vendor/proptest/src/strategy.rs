//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// directly produces a value from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A fixed value, always generated as-is.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
