//! Offline stand-in for `proptest`.
//!
//! Provides the subset the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, integer-range
//! and tuple strategies, `prop_map`, and `prop::sample::select`. Inputs
//! are generated deterministically per case index, so failures
//! reproduce without a persistence file. There is no shrinking: a
//! failing case reports its inputs via the normal panic message of the
//! underlying assertion.

pub mod sample;
pub mod strategy;

pub use strategy::Strategy;

/// Per-test configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-case RNG: every case `i` of every run draws from
/// the same stream, so CI failures reproduce locally.
pub fn case_rng(case: u32) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(
        0xa076_1d64_78bd_642f ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    )
}

/// The `prop::…` namespace (`use proptest::prelude::*` then
/// `prop::sample::select(…)`).
pub mod prop {
    pub use crate::sample;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::case_rng(__case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u64..=9), x in 1u64..100) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!((1..100).contains(&x));
        }

        #[test]
        fn map_and_select(v in (2usize..6).prop_map(|k| k * 2), e in prop::sample::select(vec![0.25f64, 0.5])) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(e == 0.25 || e == 0.5);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use rand::RngCore;
        let a: Vec<u64> = (0..4).map(|c| crate::case_rng(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| crate::case_rng(c).next_u64()).collect();
        assert_eq!(a, b);
    }
}
