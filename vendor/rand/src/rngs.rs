//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// Upstream `rand`'s `StdRng` is ChaCha12; this stand-in trades the
/// cryptographic stream for ~40 lines of dependency-free code. Every
/// workspace consumer treats the stream as opaque, keyed only by seed.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the reference seeding for xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
