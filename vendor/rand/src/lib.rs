//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the *exact* subset of the `rand` 0.8 API surface the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), but every
//! consumer in this workspace only relies on *determinism per seed*,
//! never on a specific stream, so the substitution is sound. All
//! sampling here is deliberately simple (multiply-shift range
//! reduction, 53-bit floats); statistical perfection is not a goal,
//! reproducibility is.

pub mod rngs;
pub mod seq;

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples a uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u64, usize, u32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Unbiased-enough range reduction (multiply-shift).
fn reduce(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((x as u128 * span as u128) >> 64) as u64
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn range_hits_every_value() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
