//! Slice sampling helpers (`SliceRandom` subset).

use crate::{Rng, RngCore};

/// Shuffling and choosing on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_behaviour() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let xs = [1, 2, 3];
        assert!(xs.contains(xs.choose(&mut rng).unwrap()));
    }
}
