//! Offline stand-in for `criterion`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! re-implements the API subset the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`,
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: after one warm-up iteration,
//! each benchmark runs `sample_size` timed iterations and reports
//! min / median / mean wall-clock time to stdout. There are no plots,
//! no outlier analysis, and no saved baselines — just stable,
//! dependency-free timing for relative comparisons such as
//! `engine_vs_sim`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `sample_size` recorded calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.id, &b.samples);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.id, &b.samples);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}

    fn report(&mut self, id: &str, samples: &[Duration]) {
        let full = format!("{}/{}", self.name, id);
        self.criterion.report(&full, samples);
    }
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Chained configuration hook (accepted and ignored, for parity
    /// with the real crate's generated `main`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        self.report(id, &b.samples);
        self
    }

    fn report(&mut self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{id:<60} (no samples)");
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{id:<60} min {:>12} median {:>12} mean {:>12} ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        g.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
