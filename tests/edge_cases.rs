//! Edge cases, determinism, and model ablations that the unit suites do
//! not cover: tiny graphs, tied weights, extreme weights, bandwidth-cap
//! ablation, and cross-run reproducibility.

use light_networks::congest::tree::build_bfs_tree;
use light_networks::congest::Simulator;
use light_networks::dist_mst::boruvka::distributed_mst;
use light_networks::lightgraph::{generators, metrics, mst, Graph};
use light_networks::lightnet::{light_spanner, net, shallow_light_tree};

#[test]
fn two_and_three_vertex_graphs() {
    let g2 = Graph::from_edges(2, [(0, 1, 7)]).unwrap();
    let g3 = Graph::from_edges(3, [(0, 1, 2), (1, 2, 3), (0, 2, 4)]).unwrap();
    for g in [&g2, &g3] {
        let mut sim = Simulator::new(g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let m = distributed_mst(&mut sim, &tau, 0, 1);
        assert_eq!(m.weight, mst::kruskal(g).weight);
        let slt = shallow_light_tree(&mut sim, &tau, 0, 0.5, 1);
        assert_eq!(slt.edges.len(), g.n() - 1);
        let sp = light_spanner(&mut sim, &tau, 0, 2, 0.25, 1);
        let h = g.edge_subgraph_dedup(sp.edges.iter().copied());
        assert!(h.is_connected());
        let r = net(&mut sim, &tau, 5, 0.5, 1);
        assert!(!r.points.is_empty());
    }
}

#[test]
fn all_equal_weights_resolve_by_edge_id() {
    // every weight identical: the (weight, id) tie-break must still make
    // the distributed MST unique and equal to Kruskal's
    let g = generators::complete(24, 1, 0);
    let g = Graph::from_edges(g.n(), g.edges().iter().map(|e| (e.u, e.v, 5))).unwrap();
    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let d = distributed_mst(&mut sim, &tau, 0, 3);
    let k = mst::kruskal(&g);
    assert_eq!(d.mst_edges, k.edges);
    assert_eq!(d.weight, 23 * 5);
}

#[test]
fn poly_n_weights_do_not_overflow() {
    // weights near the paper's poly(n) ceiling
    let n = 32u64;
    let big = n * n * n;
    let mut g = generators::path(32, 1);
    for v in 2..32 {
        g.add_edge(0, v, big + v as u64).unwrap();
    }
    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let slt = shallow_light_tree(&mut sim, &tau, 0, 0.5, 2);
    let tree = g.edge_subgraph_dedup(slt.edges.iter().copied());
    assert!(metrics::lightness(&g, &tree).is_finite());
    let sp = light_spanner(&mut sim, &tau, 0, 2, 0.25, 2);
    assert!(!sp.edges.is_empty());
}

#[test]
fn runs_are_deterministic_in_the_seed() {
    let g = generators::erdos_renyi(48, 0.15, 40, 9);
    let run = |seed: u64| {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let sp = light_spanner(&mut sim, &tau, 0, 2, 0.25, seed);
        (sp.edges, sp.stats.rounds)
    };
    assert_eq!(
        run(7),
        run(7),
        "same seed must give identical output and rounds"
    );
    // different seeds may differ, but both stay within the bounds
    let (e1, _) = run(7);
    let (e2, _) = run(8);
    for edges in [&e1, &e2] {
        let h = g.edge_subgraph_dedup(edges.iter().copied());
        assert!(metrics::max_stretch(&g, &h) <= 3.0 * 1.25 * (1.0 + 1.0));
    }
}

#[test]
fn larger_bandwidth_cap_only_speeds_things_up() {
    // CONGEST with B-word messages: cap 4 must not change the output of
    // a deterministic computation, only reduce rounds.
    let g = generators::erdos_renyi(40, 0.15, 30, 4);
    let mut sim1 = Simulator::new(&g);
    let (tau1, _) = build_bfs_tree(&mut sim1, 0);
    let m1 = distributed_mst(&mut sim1, &tau1, 0, 5);

    let mut sim4 = Simulator::new(&g);
    sim4.set_cap(4);
    let (tau4, _) = build_bfs_tree(&mut sim4, 0);
    let m4 = distributed_mst(&mut sim4, &tau4, 0, 5);

    assert_eq!(m1.mst_edges, m4.mst_edges, "cap must not change the result");
    assert!(
        m4.stats.rounds <= m1.stats.rounds,
        "cap 4 took {} rounds vs {} at cap 1",
        m4.stats.rounds,
        m1.stats.rounds
    );
}

#[test]
fn heavier_than_mst_edges_are_never_needed() {
    // edges heavier than 2·w(MST) are served by the tree alone (§5)
    let mut g = generators::path(20, 1);
    g.add_edge(0, 19, 10_000).unwrap();
    let heavy_id = g.m() - 1;
    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let sp = light_spanner(&mut sim, &tau, 0, 2, 0.25, 6);
    assert!(
        !sp.edges.contains(&heavy_id),
        "the heavy chord must be excluded from the spanner"
    );
    let h = g.edge_subgraph_dedup(sp.edges.iter().copied());
    assert!(metrics::max_stretch(&g, &h) <= 3.0 * 1.25 + 1e-9);
}

#[test]
fn net_on_star_with_huge_hub_distance() {
    // covering must hold even when one vertex dominates all distances
    let mut g = Graph::new(12);
    for v in 1..12 {
        g.add_edge(0, v, 1000).unwrap();
    }
    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let r = net(&mut sim, &tau, 100, 0.5, 3);
    // scale 100 < min distance: everyone is a net point
    assert_eq!(r.points.len(), 12);
    let r2 = net(&mut sim, &tau, 4000, 0.5, 3);
    assert_eq!(r2.points.len(), 1, "one point covers the whole star");
}
