//! End-to-end integration tests spanning every crate: generator →
//! CONGEST simulator → distributed MST → Euler tour → SLT / spanners /
//! nets, validated against the sequential oracles.

use light_networks::congest::tree::build_bfs_tree;
use light_networks::congest::Simulator;
use light_networks::dist_mst::{boruvka::distributed_mst, euler::distributed_euler_tour};
use light_networks::lightgraph::{dijkstra, generators, metrics, mst, tree::RootedTree};
use light_networks::lightnet::{
    doubling_spanner, estimate_mst_weight, kry_slt, light_spanner, net, net_quality,
    shallow_light_tree,
};
use light_networks::sparse_spanner::{baswana_sen::baswana_sen, greedy::greedy_2k_minus_1};

#[test]
fn full_pipeline_on_every_family() {
    for family in generators::Family::ALL {
        let g = family.generate(48, 3);
        let rt = 0;
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, rt);

        // distributed MST == Kruskal
        let dmst = distributed_mst(&mut sim, &tau, rt, 7);
        let reference = mst::kruskal(&g);
        assert_eq!(dmst.weight, reference.weight, "family {}", family.name());
        assert_eq!(dmst.mst_edges, reference.edges, "family {}", family.name());

        // distributed Euler tour == sequential tour of the same tree
        let tour = distributed_euler_tour(&mut sim, &tau, &dmst, rt);
        let t = RootedTree::from_edge_ids(&g, &dmst.mst_edges, rt);
        let (seq, times) = tour.assemble();
        let expected = t.euler_tour();
        assert_eq!(seq, expected.seq, "family {}", family.name());
        assert_eq!(times, expected.times, "family {}", family.name());
    }
}

#[test]
fn slt_beats_both_extremes_on_every_family() {
    for family in generators::Family::ALL {
        let g = family.generate(40, 11);
        let rt = 0;
        let eps = 0.5;
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, rt);
        let slt = shallow_light_tree(&mut sim, &tau, rt, eps, 11);
        let tree = g.edge_subgraph_dedup(slt.edges.iter().copied());
        assert_eq!(tree.m(), g.n() - 1, "family {}", family.name());
        let stretch = metrics::root_stretch(&g, &tree, rt);
        let light = metrics::lightness(&g, &tree);
        assert!(
            stretch <= 1.0 + 60.0 * eps,
            "family {} stretch {stretch}",
            family.name()
        );
        assert!(
            light <= 1.0 + 8.0 / eps + 0.1,
            "family {} lightness {light}",
            family.name()
        );
    }
}

#[test]
fn light_spanner_vs_baselines() {
    let g = generators::erdos_renyi(56, 0.18, 60, 5);
    let (k, eps) = (2, 0.25);
    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let ours = light_spanner(&mut sim, &tau, 0, k, eps, 5);
    let h = g.edge_subgraph_dedup(ours.edges.iter().copied());
    let q = metrics::spanner_quality(&g, &h);

    // greedy baseline: existentially optimal quality
    let greedy = g.edge_subgraph(greedy_2k_minus_1(&g, k));
    let gq = metrics::spanner_quality(&g, &greedy);

    // Baswana–Sen baseline: sparse but with NO lightness guarantee
    let mut sim2 = Simulator::new(&g);
    let bs = baswana_sen(&mut sim2, k, 5);
    let bsh = g.edge_subgraph_dedup(bs.edges.iter().copied());
    let bsq = metrics::spanner_quality(&g, &bsh);

    // all three respect their stretch bounds
    assert!(q.stretch <= (2 * k - 1) as f64 * (1.0 + 5.0 * eps));
    assert!(gq.stretch <= (2 * k - 1) as f64 + 1e-9);
    assert!(bsq.stretch <= (2 * k - 1) as f64 + 1e-9);
    // ours is within a constant factor of greedy's lightness (greedy is
    // the existential optimum; Theorem 2 promises O(k n^{1/k}))
    assert!(
        q.lightness <= 30.0 * gq.lightness.max(1.0),
        "our lightness {} vs greedy {}",
        q.lightness,
        gq.lightness
    );
}

#[test]
fn nets_compose_into_mst_estimate() {
    let g = generators::random_geometric(40, 0.3, 9);
    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    // a single net obeys its radii
    let r = net(&mut sim, &tau, 200_000, 0.5, 9);
    let (cover, sep) = net_quality(&g, &r.points);
    assert!(cover <= 300_001);
    if r.points.len() > 1 {
        assert!(sep as f64 >= 200_000.0 / 1.5 - 1.0);
    }
    // the §8 estimator sandwiches the MST weight
    let l = mst::kruskal(&g).weight;
    let est = estimate_mst_weight(&mut sim, &tau, 9);
    assert!(est.psi >= l);
    assert!((est.psi as f64) <= est.alpha * 16.0 * (g.n() as f64).log2() * l as f64 + 16.0);
}

#[test]
fn doubling_spanner_preserves_all_distances() {
    let g = generators::random_geometric(36, 0.35, 13);
    let mut sim = Simulator::new(&g);
    let (tau, _) = build_bfs_tree(&mut sim, 0);
    let eps = 0.25;
    let ds = doubling_spanner(&mut sim, &tau, 0, eps, 13);
    let h = g.edge_subgraph_dedup(ds.edges.iter().copied());
    // exhaustive pairwise check (not just edges)
    let ag = dijkstra::all_pairs(&g);
    let ah = dijkstra::all_pairs(&h);
    for u in 0..g.n() {
        for v in 0..g.n() {
            if u != v {
                assert!(
                    ah[u][v] as f64 <= (1.0 + 30.0 * eps) * ag[u][v] as f64 + 1e-9,
                    "pair ({u},{v}): {} vs {}",
                    ah[u][v],
                    ag[u][v]
                );
            }
        }
    }
}

#[test]
fn distributed_slt_tracks_kry_frontier() {
    let g = generators::caterpillar(20, 3, 3);
    let rt = 0;
    for &eps in &[0.5, 1.0] {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, rt);
        let ours = shallow_light_tree(&mut sim, &tau, rt, eps, 3);
        let our_tree = g.edge_subgraph_dedup(ours.edges.iter().copied());
        let kry_tree = g.edge_subgraph_dedup(kry_slt(&g, rt, eps));
        let (ol, kl) = (
            metrics::lightness(&g, &our_tree),
            metrics::lightness(&g, &kry_tree),
        );
        // the two-phase selection loses only a constant factor (§1.4)
        assert!(ol <= 3.0 * kl + 1.0, "ours {ol} vs KRY {kl} at eps={eps}");
    }
}

#[test]
fn round_counts_are_reported_and_positive() {
    let g = generators::erdos_renyi(48, 0.12, 40, 21);
    let mut sim = Simulator::new(&g);
    let (tau, stats) = build_bfs_tree(&mut sim, 0);
    assert!(stats.rounds > 0);
    let slt = shallow_light_tree(&mut sim, &tau, 0, 0.5, 21);
    assert!(slt.stats.rounds > 0);
    assert!(slt.stats.messages > 0);
    // cumulative accounting includes every phase
    assert!(sim.total().rounds >= slt.stats.rounds);
}
