//! Property-based tests (proptest) for the core invariants: random
//! graphs, seeds and parameters — the guarantees must hold for *every*
//! sample, not just the unit-test instances.

use light_networks::congest::tree::build_bfs_tree;
use light_networks::congest::Simulator;
use light_networks::dist_mst::boruvka::distributed_mst;
use light_networks::dist_mst::euler::distributed_euler_tour;
use light_networks::lightgraph::{generators, metrics, mst, tree::RootedTree, Graph};
use light_networks::lightnet::{net, net_quality, shallow_light_tree};
use proptest::prelude::*;

/// Random connected weighted graph from a compact strategy: a seed, a
/// size, and an edge-density knob.
fn arb_graph() -> impl Strategy<Value = (Graph, u64)> {
    (8usize..40, 0u64..1_000, 1u64..4).prop_map(|(n, seed, dens)| {
        let p = dens as f64 * 2.0 / n as f64;
        (generators::erdos_renyi(n, p.min(0.9), 50, seed), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_distributed_mst_equals_kruskal((g, seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let d = distributed_mst(&mut sim, &tau, 0, seed);
        let r = mst::kruskal(&g);
        prop_assert_eq!(d.weight, r.weight);
        prop_assert_eq!(d.mst_edges, r.edges);
    }

    #[test]
    fn prop_euler_tour_is_exact((g, seed) in arb_graph()) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let m = distributed_mst(&mut sim, &tau, 0, seed);
        let tour = distributed_euler_tour(&mut sim, &tau, &m, 0);
        let t = RootedTree::from_edge_ids(&g, &m.mst_edges, 0);
        let reference = t.euler_tour();
        let (seq, times) = tour.assemble();
        prop_assert_eq!(seq, reference.seq);
        prop_assert_eq!(times, reference.times);
        prop_assert_eq!(tour.total_length, 2 * m.weight);
    }

    #[test]
    fn prop_slt_bounds((g, seed) in arb_graph(), eps in prop::sample::select(vec![0.25f64, 0.5, 1.0])) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let slt = shallow_light_tree(&mut sim, &tau, 0, eps, seed);
        let tree = g.edge_subgraph_dedup(slt.edges.iter().copied());
        prop_assert_eq!(tree.m(), g.n() - 1);
        let stretch = metrics::root_stretch(&g, &tree, 0);
        let light = metrics::lightness(&g, &tree);
        prop_assert!(stretch <= 1.0 + 60.0 * eps, "stretch {}", stretch);
        prop_assert!(light <= 1.0 + 8.0 / eps + 0.1, "lightness {}", light);
    }

    #[test]
    fn prop_net_covering_and_separation(
        (g, seed) in arb_graph(),
        scale in 2u64..80,
        delta in prop::sample::select(vec![0.25f64, 0.5, 1.0]),
    ) {
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let r = net(&mut sim, &tau, scale, delta, seed);
        prop_assert!(!r.points.is_empty());
        let (cover, sep) = net_quality(&g, &r.points);
        let alpha = ((scale as f64) * (1.0 + delta)).ceil() as u64 + 1;
        prop_assert!(cover <= alpha, "covering {} > {}", cover, alpha);
        if r.points.len() > 1 {
            let beta = ((scale as f64) / (1.0 + delta)).floor() as u64;
            prop_assert!(sep >= beta, "separation {} < {}", sep, beta);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_spanner_stretch_via_baswana_sen((g, seed) in arb_graph(), k in 2usize..4) {
        use light_networks::sparse_spanner::baswana_sen::baswana_sen;
        let mut sim = Simulator::new(&g);
        let sp = baswana_sen(&mut sim, k, seed);
        let h = g.edge_subgraph_dedup(sp.edges.iter().copied());
        let s = metrics::max_stretch(&g, &h);
        prop_assert!(s <= (2 * k - 1) as f64 + 1e-9, "stretch {}", s);
    }

    #[test]
    fn prop_le_lists_match_oracle((g, seed) in arb_graph()) {
        use light_networks::dist_sssp::le_lists::le_lists;
        use light_networks::lightgraph::{dijkstra, INF};
        let active = vec![true; g.n()];
        let mut sim = Simulator::new(&g);
        let (tau, _) = build_bfs_tree(&mut sim, 0);
        let le = le_lists(&mut sim, &tau, &active, INF, 0.0, seed);
        let ap = dijkstra::all_pairs(&g);
        // spot-check the defining property on every vertex: each list
        // entry is undominated, and the closest active vertex of any
        // radius appears
        for v in 0..g.n() {
            for &(u, d) in &le.lists[v] {
                prop_assert_eq!(d, ap[v][u]);
                let dominated = (0..g.n())
                    .any(|w| ap[v][w] <= d && le.rank[w] < le.rank[u]);
                prop_assert!(!dominated, "entry ({}, {}) at {} dominated", u, d, v);
            }
            // the global rank-minimum within any ball is in the list
            let r = 25;
            let expect = (0..g.n())
                .filter(|&u| ap[v][u] <= r)
                .min_by_key(|&u| le.rank[u]);
            prop_assert_eq!(le.first_within(v, r), expect);
        }
    }
}
