#!/usr/bin/env bash
# Scrubs the machine-dependent and scheduler-accounting columns from
# scenario-runner output so it can be diffed against the golden
# fixtures in crates/engine/tests/fixtures/.
#
# The scrubbed fields mirror SCRUBBED_FIELDS in
# crates/engine/tests/golden.rs (the in-process golden test): wall_ms,
# threads, and the per-phase wall columns deliver_ms/compute_ms/
# barrier_ms are machine-dependent; active_peak and active_mean are
# deterministic frontier bookkeeping, scrubbed so fixtures pin the
# *simulated* algorithm rather than the scheduler's accounting. The
# per-node message summary columns (msg_max_node, msg_max, msg_p50,
# msg_p99) are deterministic and stay pinned. Keep the two lists in
# sync.
#
# Usage:
#   scripts/scrub_golden.sh jsonl rows.jsonl > rows.scrubbed.jsonl
#   scripts/scrub_golden.sh csv   rows.csv   > rows.scrubbed.csv
#
# To regenerate the committed fixtures after an intentional behavior
# change, run the in-process twin instead:
#   UPDATE_GOLDEN=1 cargo test -p engine --test golden
set -euo pipefail

mode="${1:?usage: scrub_golden.sh jsonl|csv <file>}"
file="${2:?usage: scrub_golden.sh jsonl|csv <file>}"

case "$mode" in
  jsonl)
    sed -E 's/"wall_ms":[0-9.]+/"wall_ms":_/; s/"threads":[0-9]+/"threads":_/; s/"active_peak":[0-9]+/"active_peak":_/; s/"active_mean":[0-9.]+/"active_mean":_/; s/"deliver_ms":[0-9.]+/"deliver_ms":_/; s/"compute_ms":[0-9.]+/"compute_ms":_/; s/"barrier_ms":[0-9.]+/"barrier_ms":_/' "$file"
    ;;
  csv)
    awk -F, -v OFS=, 'NR==1{for(i=1;i<=NF;i++) if ($i=="wall_ms"||$i=="threads"||$i=="active_peak"||$i=="active_mean"||$i=="deliver_ms"||$i=="compute_ms"||$i=="barrier_ms") s[i]=1; print; next} {for(i in s) $i="_"; print}' "$file"
    ;;
  *)
    echo "scrub_golden.sh: unknown mode \`$mode\` (expected jsonl or csv)" >&2
    exit 2
    ;;
esac
